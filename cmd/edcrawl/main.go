// Command edcrawl runs the paper's measurement methodology end to end: it
// builds a synthetic eDonkey population, crawls it through the wire
// protocol (server nickname sweeps, reachability filtering, daily cache
// browsing) and writes the resulting full trace to a file.
//
// The output format is inferred from the extension: ".edt" selects the
// columnar format (the default, written day by day as the crawl runs, so
// memory stays one day deep), anything else the legacy gob.
//
// Usage:
//
//	edcrawl -o trace.edt [-peers 1000] [-days 14] [-prefix 2] [-budget 500]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"edonkey/internal/crawler"
	"edonkey/internal/trace"
	"edonkey/internal/workload"
)

func main() {
	var (
		out     = flag.String("o", "trace.edt", "output trace file (.edt = columnar, else gob)")
		jsonOut = flag.String("json", "", "also write an anonymized JSON export")
		seed    = flag.Uint64("seed", 1, "world seed")
		peers   = flag.Int("peers", 1000, "number of underlying clients")
		days    = flag.Int("days", 14, "crawl duration in days")
		files   = flag.Int("files", 0, "initial catalogue size (0 = 30x peers)")
		prefix  = flag.Int("prefix", 2, "nickname sweep depth (1..3 letters)")
		budget  = flag.Int("budget", 0, "initial daily browse budget (0 = unlimited)")
		final   = flag.Int("final-budget", 0, "final daily browse budget (models bandwidth decline)")
		publish = flag.Bool("publish", false, "clients publish caches to the server too")
		workers = flag.Int("workers", 0, "worker pool size for world evolution (0 = GOMAXPROCS, 1 = serial); traces are identical for any value")
	)
	flag.Parse()

	wcfg := workload.DefaultConfig()
	wcfg.Seed = *seed
	wcfg.Peers = *peers
	wcfg.Days = *days
	wcfg.Workers = *workers
	wcfg.Topics = max(8, *peers/20)
	if *files > 0 {
		wcfg.InitialFiles = *files
	} else {
		wcfg.InitialFiles = 30 * *peers
	}
	wcfg.NewFilesPerDay = max(1, wcfg.InitialFiles/100)

	ccfg := crawler.Config{
		PrefixLen:     *prefix,
		InitialBudget: *budget,
		FinalBudget:   *final,
		PublishFiles:  *publish,
	}

	if err := run(wcfg, ccfg, *out, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "edcrawl:", err)
		os.Exit(1)
	}
}

func run(wcfg workload.Config, ccfg crawler.Config, out, jsonOut string) error {
	// The .edt path streams each completed day to the open writer — the
	// whole trace is never resident. The gob format (and the JSON export)
	// needs the full trace in memory, so those fall back to a batch run.
	if strings.HasSuffix(out, ".edt") && jsonOut == "" {
		return runStreaming(wcfg, ccfg, out)
	}
	tr, stats, err := crawler.Crawl(wcfg, ccfg)
	if err != nil {
		return err
	}
	report(stats, tr.ObservedPeers(), tr.DistinctFiles(), tr.Observations())
	if err := tr.WriteFile(out); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		if err := tr.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonOut)
	}
	return nil
}

func runStreaming(wcfg workload.Config, ccfg crawler.Config, out string) error {
	w, err := workload.New(wcfg)
	if err != nil {
		return err
	}
	c, err := crawler.New(w, ccfg)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	ew, err := trace.NewEDTWriter(bw)
	if err != nil {
		f.Close()
		return err
	}
	if err := c.RunStream(w.Config.Days, ew); err != nil {
		f.Close()
		return err
	}
	files, peers := c.Meta()
	if err := ew.Finish(files, peers); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	// Every registered peer was browsed at least once and every file was
	// seen in a cache, so the metadata counts are the trace-level stats.
	report(c.Stats, len(peers), len(files), c.Stats.Snapshots)
	fmt.Printf("wrote %s (streamed day by day)\n", out)
	return nil
}

func report(stats crawler.Stats, peers, files, observations int) {
	fmt.Printf("crawl finished: %d days, %d queries, %d identities discovered\n",
		stats.Days, stats.Queries, stats.UniqueUsers)
	fmt.Printf("  low-ID skipped: %d, browse rejected: %d, snapshots: %d\n",
		stats.LowIDSkipped, stats.BrowseRejected, stats.Snapshots)
	fmt.Printf("trace: %d peers, %d distinct files, %d observations\n",
		peers, files, observations)
}
