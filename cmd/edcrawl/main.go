// Command edcrawl runs the paper's measurement methodology end to end: it
// builds a synthetic eDonkey population, crawls it through the wire
// protocol (server nickname sweeps, reachability filtering, daily cache
// browsing) and writes the resulting full trace to a file.
//
// Usage:
//
//	edcrawl -o trace.gob [-peers 1000] [-days 14] [-prefix 2] [-budget 500]
package main

import (
	"flag"
	"fmt"
	"os"

	"edonkey/internal/crawler"
	"edonkey/internal/workload"
)

func main() {
	var (
		out     = flag.String("o", "trace.gob", "output trace file")
		jsonOut = flag.String("json", "", "also write an anonymized JSON export")
		seed    = flag.Uint64("seed", 1, "world seed")
		peers   = flag.Int("peers", 1000, "number of underlying clients")
		days    = flag.Int("days", 14, "crawl duration in days")
		files   = flag.Int("files", 0, "initial catalogue size (0 = 30x peers)")
		prefix  = flag.Int("prefix", 2, "nickname sweep depth (1..3 letters)")
		budget  = flag.Int("budget", 0, "initial daily browse budget (0 = unlimited)")
		final   = flag.Int("final-budget", 0, "final daily browse budget (models bandwidth decline)")
		publish = flag.Bool("publish", false, "clients publish caches to the server too")
		workers = flag.Int("workers", 0, "worker pool size for world evolution (0 = GOMAXPROCS, 1 = serial); traces are identical for any value")
	)
	flag.Parse()

	wcfg := workload.DefaultConfig()
	wcfg.Seed = *seed
	wcfg.Peers = *peers
	wcfg.Days = *days
	wcfg.Workers = *workers
	wcfg.Topics = max(8, *peers/20)
	if *files > 0 {
		wcfg.InitialFiles = *files
	} else {
		wcfg.InitialFiles = 30 * *peers
	}
	wcfg.NewFilesPerDay = max(1, wcfg.InitialFiles/100)

	ccfg := crawler.Config{
		PrefixLen:     *prefix,
		InitialBudget: *budget,
		FinalBudget:   *final,
		PublishFiles:  *publish,
	}

	tr, stats, err := crawler.Crawl(wcfg, ccfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edcrawl:", err)
		os.Exit(1)
	}
	fmt.Printf("crawl finished: %d days, %d queries, %d identities discovered\n",
		stats.Days, stats.Queries, stats.UniqueUsers)
	fmt.Printf("  low-ID skipped: %d, browse rejected: %d, snapshots: %d\n",
		stats.LowIDSkipped, stats.BrowseRejected, stats.Snapshots)
	fmt.Printf("trace: %d peers, %d distinct files, %d observations\n",
		tr.ObservedPeers(), tr.DistinctFiles(), tr.Observations())

	if err := tr.WriteFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, "edcrawl:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edcrawl:", err)
			os.Exit(1)
		}
		if err := tr.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "edcrawl:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
