// Command edload drives an edserved instance with open-loop load
// (internal/loadgen): a fixed connection fleet fires a trace-style
// request mix — login storms, nickname sweeps, keyword searches, source
// queries, browse attempts — on a wall-clock arrival schedule, and
// reports throughput plus per-class p50/p99/p99.9 latency measured from
// each request's scheduled arrival (queueing delay included).
//
// Usage:
//
//	edload -addr localhost:4661 -conns 1000 -rate 20000 -duration 10s \
//	       [-mix login=5,users=15,search=40,sources=30,browse=10] \
//	       [-seed 1] [-minqps 0] [-maxerr 0]
//
// With -minqps/-maxerr set, edload exits non-zero when the run misses
// the throughput floor or exceeds the error-rate ceiling, which is how
// CI's serve-smoke job gates the serving path.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"edonkey/internal/loadgen"
	"edonkey/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:4661", "server TCP address")
		conns    = flag.Int("conns", 100, "connection fleet size")
		rate     = flag.Float64("rate", 1000, "aggregate arrival rate, requests/second")
		duration = flag.Duration("duration", 10*time.Second, "arrival window")
		mixStr   = flag.String("mix", "", "class weights, e.g. login=5,users=15,search=40,sources=30,browse=10")
		seed     = flag.Uint64("seed", 1, "request-sequence seed")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-request deadline")
		minQPS   = flag.Float64("minqps", 0, "fail if completed qps falls below this floor")
		maxErr   = flag.Float64("maxerr", -1, "fail if the error fraction exceeds this ceiling (-1 = no gate)")
	)
	flag.Parse()

	mix := loadgen.DefaultMix()
	if *mixStr != "" {
		var err error
		if mix, err = loadgen.ParseMix(*mixStr); err != nil {
			fmt.Fprintln(os.Stderr, "edload:", err)
			os.Exit(2)
		}
	}

	rep, err := loadgen.Run(loadgen.Config{
		Addr:     *addr,
		Conns:    *conns,
		Rate:     *rate,
		Duration: *duration,
		Mix:      mix,
		Seed:     *seed,
		Timeout:  *timeout,
		Keywords: workload.NameWords(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "edload:", err)
		os.Exit(1)
	}
	fmt.Print(rep.String())

	fail := false
	if *minQPS > 0 && rep.QPS < *minQPS {
		fmt.Fprintf(os.Stderr, "edload: qps %.0f below floor %.0f\n", rep.QPS, *minQPS)
		fail = true
	}
	if *maxErr >= 0 && rep.Sent > 0 {
		frac := float64(rep.Errors) / float64(rep.Sent)
		if frac > *maxErr {
			fmt.Fprintf(os.Stderr, "edload: error fraction %.4f above ceiling %.4f\n", frac, *maxErr)
			fail = true
		}
	}
	if fail {
		os.Exit(1)
	}
}
