package main

import (
	"os"
	"slices"
	"testing"
)

// TestDiffGatesExtras pins the -gate-extra semantics: byte metrics gate
// unscaled, time-valued ("ns/...") metrics are anchor-normalized first,
// and a regression in either fails the diff even when ns/op is fine.
func TestDiffGatesExtras(t *testing.T) {
	sink, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	baseline := []Record{
		{Op: "anchor", NsOp: 100},
		{Op: "crawl", NsOp: 1000, Extra: map[string]float64{
			"bytes_per_peer": 2000, "ns/snap": 500,
		}},
	}
	gate := []string{"bytes_per_peer", "ns/snap"}

	// A 2x slower machine (anchor 100 -> 200): doubled ns/op and ns/snap
	// normalize away, while the unscaled byte metric must hold still.
	fresh := []Record{
		{Op: "anchor", NsOp: 200},
		{Op: "crawl", NsOp: 2000, Extra: map[string]float64{
			"bytes_per_peer": 2000, "ns/snap": 1000,
		}},
	}
	regs, err := diff(baseline, fresh, 25, "anchor", gate, sink)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("machine-speed-only change flagged: %v", regs)
	}

	// A genuine browse slowdown and a re-boxed world on the same machine:
	// both extras must be reported as regressions.
	fresh = []Record{
		{Op: "anchor", NsOp: 100},
		{Op: "crawl", NsOp: 1000, Extra: map[string]float64{
			"bytes_per_peer": 3000, "ns/snap": 800,
		}},
	}
	regs, err = diff(baseline, fresh, 25, "anchor", gate, sink)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"crawl bytes_per_peer", "crawl ns/snap"} {
		if !slices.Contains(regs, want) {
			t.Errorf("regressions %v missing %q", regs, want)
		}
	}
}
