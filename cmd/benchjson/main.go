// Command benchjson converts `go test -bench` output into a
// machine-readable JSON file so CI can archive the performance
// trajectory PR-over-PR, and diffs two such files to flag regressions.
//
// As a filter it acts as a tee: every input line is echoed to stdout
// unchanged, benchmark result lines are additionally parsed into records
// of the form
//
//	{"op": "BenchmarkPairOverlap/impl=store/peers=10000",
//	 "ns_op": 16361604, "b_op": 2400352, "allocs_op": 15,
//	 "peers": 10000}
//
// Custom metrics reported via testing.B.ReportMetric (e.g. the trace
// format benchmark's file-bytes) land in an "extra" map. The peers field
// is extracted from a `peers=N` label in the benchmark name when
// present. Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -out BENCH_store.json
//
// In diff mode no benchmark output is read; two record files are
// compared and any shared benchmark whose ns/op regressed by more than
// -tolerance percent fails the run (`make bench-diff`, enforced in CI):
//
//	benchjson -diff BENCH_baseline.json -in BENCH_store.json -tolerance 25 \
//	          -anchor 'BenchmarkTraceIO/op=load/format=gob/peers=20000' \
//	          -gate-extra bytes_after_load,file-bytes
//
// -anchor normalizes for machine speed: every fresh ns/op is divided by
// the anchor benchmark's fresh/baseline ratio before comparison, so a
// baseline recorded on one machine still gates CI runners of different
// speeds. Pick an anchor whose code never changes (the legacy gob load
// path here).
//
// -gate-extra names custom metrics (comma-separated) gated with the
// same tolerance wherever baseline and fresh both report them. Byte and
// count metrics are machine-independent, so no anchor scaling applies —
// a bytes_after_load regression fails CI exactly like an ns/op
// regression. Metrics whose unit starts with "ns/" (ns/snap, the browse
// cost per snapshot) are wall clock and are anchor-normalized like
// ns/op before the comparison.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Record is one parsed benchmark result.
type Record struct {
	Op       string             `json:"op"`
	NsOp     float64            `json:"ns_op"`
	BOp      int64              `json:"b_op,omitempty"`
	AllocsOp int64              `json:"allocs_op,omitempty"`
	Peers    int                `json:"peers,omitempty"`
	Extra    map[string]float64 `json:"extra,omitempty"`
}

var (
	// Benchmark result lines: name, iterations, then "value unit" pairs.
	benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)
	peersTag  = regexp.MustCompile(`peers=(\d+)`)
)

func parseLine(line string) (Record, bool) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return Record{}, false
	}
	rec := Record{Op: trimCPUSuffix(m[1])}
	if pm := peersTag.FindStringSubmatch(rec.Op); pm != nil {
		rec.Peers, _ = strconv.Atoi(pm[1])
	}
	fields := strings.Fields(m[3])
	ok := false
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			rec.NsOp = v
			ok = true
		case "B/op":
			rec.BOp = int64(v)
		case "allocs/op":
			rec.AllocsOp = int64(v)
		default:
			if rec.Extra == nil {
				rec.Extra = make(map[string]float64)
			}
			rec.Extra[fields[i+1]] = v
		}
	}
	return rec, ok
}

// trimCPUSuffix drops the trailing -N GOMAXPROCS marker go test appends
// to benchmark names, so records compare across machines.
func trimCPUSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func readRecords(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// diff compares fresh against baseline on ns/op, printing a table and
// returning the ops whose regression exceeds tolerance percent. When
// anchor names a benchmark present on both sides, every fresh ns/op is
// first divided by the anchor's fresh/baseline ratio — a machine-speed
// normalization that lets a baseline recorded on one machine gate runs
// on another (CI runners differ from dev boxes by more than any sane
// tolerance; the anchor benchmark itself is the clock and by
// construction never regresses). Ops present on only one side are
// reported but never fail the run, so adding or retiring benchmarks
// does not break CI.
func diff(baseline, fresh []Record, tolerance float64, anchor string, gateExtras []string, w *os.File) ([]string, error) {
	base := make(map[string]Record, len(baseline))
	for _, r := range baseline {
		base[r.Op] = r
	}
	scale := 1.0
	if anchor != "" {
		b, okB := base[anchor]
		var f Record
		okF := false
		for _, r := range fresh {
			if r.Op == anchor {
				f, okF = r, true
				break
			}
		}
		if !okB || !okF || b.NsOp <= 0 || f.NsOp <= 0 {
			// Without the anchor the comparison degenerates to raw
			// cross-machine ns/op, which is meaningless against a
			// committed baseline — fail closed rather than gate on noise.
			return nil, fmt.Errorf("anchor %q missing or zero in baseline or fresh records", anchor)
		}
		scale = f.NsOp / b.NsOp
		fmt.Fprintf(w, "  machine scale %.3fx from anchor %s\n", scale, anchor)
	}
	var regressions []string
	seen := make(map[string]bool, len(fresh))
	for _, r := range fresh {
		b, ok := base[r.Op]
		if !ok {
			fmt.Fprintf(w, "  new      %-60s %12.0f ns/op\n", r.Op, r.NsOp)
			continue
		}
		seen[r.Op] = true
		if b.NsOp <= 0 {
			continue
		}
		delta := 100 * (r.NsOp/scale - b.NsOp) / b.NsOp
		status := "ok"
		if delta > tolerance {
			status = "REGRESSED"
			regressions = append(regressions, r.Op)
		}
		fmt.Fprintf(w, "  %-8s %-60s %12.0f -> %12.0f ns/op (%+.1f%% normalized)\n",
			status, r.Op, b.NsOp, r.NsOp, delta)
		// Machine-independent extras (bytes, counts) gate unscaled;
		// time-valued extras (unit "ns/...", e.g. ns/snap) are wall
		// clock like ns/op and get the same anchor normalization.
		for _, name := range gateExtras {
			bv, okB := b.Extra[name]
			fv, okF := r.Extra[name]
			if !okB || !okF || bv <= 0 {
				continue
			}
			norm := fv
			if strings.HasPrefix(name, "ns/") {
				norm = fv / scale
			}
			ed := 100 * (norm - bv) / bv
			estatus := "ok"
			if ed > tolerance {
				estatus = "REGRESSED"
				regressions = append(regressions, r.Op+" "+name)
			}
			fmt.Fprintf(w, "  %-8s %-60s %12.0f -> %12.0f %s (%+.1f%%)\n",
				estatus, r.Op, bv, fv, name, ed)
		}
	}
	for _, r := range baseline {
		if !seen[r.Op] {
			fmt.Fprintf(w, "  removed  %-60s\n", r.Op)
		}
	}
	return regressions, nil
}

func main() {
	out := flag.String("out", "BENCH_store.json", "output JSON file (tee mode)")
	diffBase := flag.String("diff", "", "baseline JSON: compare -in against it instead of parsing stdin")
	in := flag.String("in", "", "fresh results JSON for -diff")
	tolerance := flag.Float64("tolerance", 25, "max ns/op regression percent allowed by -diff")
	anchor := flag.String("anchor", "", "benchmark op used to normalize machine speed in -diff")
	gateExtra := flag.String("gate-extra", "", "comma-separated custom metrics gated by -diff (unscaled)")
	flag.Parse()

	if *diffBase != "" {
		baseline, err := readRecords(*diffBase)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fresh, err := readRecords(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var gateExtras []string
		for _, name := range strings.Split(*gateExtra, ",") {
			if name = strings.TrimSpace(name); name != "" {
				gateExtras = append(gateExtras, name)
			}
		}
		fmt.Printf("benchjson: %s vs %s (tolerance %.0f%%)\n", *in, *diffBase, *tolerance)
		regressions, err := diff(baseline, fresh, *tolerance, *anchor, gateExtras, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%%: %s\n",
				len(regressions), *tolerance, strings.Join(regressions, ", "))
			os.Exit(1)
		}
		fmt.Println("benchjson: no ns/op regressions beyond tolerance")
		return
	}

	// Repeated runs of the same benchmark (go test -count=N) collapse to
	// the fastest one: minimum ns/op is the standard noise filter, and it
	// is what makes the -diff gate usable on shared CI runners.
	var records []Record
	byOp := make(map[string]int)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		rec, ok := parseLine(line)
		if !ok {
			continue
		}
		if i, dup := byOp[rec.Op]; dup {
			if rec.NsOp < records[i].NsOp {
				records[i] = rec
			}
			continue
		}
		byOp[rec.Op] = len(records)
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d records to %s\n", len(records), *out)
}
