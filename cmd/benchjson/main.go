// Command benchjson converts `go test -bench` output into a
// machine-readable JSON file so CI can archive the performance
// trajectory PR-over-PR. It acts as a tee: every input line is echoed
// to stdout unchanged, benchmark result lines are additionally parsed
// into records of the form
//
//	{"op": "BenchmarkPairOverlap/impl=store/peers=10000",
//	 "ns_op": 16361604, "b_op": 2400352, "allocs_op": 15,
//	 "peers": 10000}
//
// The peers field is extracted from a `peers=N` label in the benchmark
// name when present. Usage:
//
//	go test -bench=. -benchmem ./... | benchjson -out BENCH_store.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Record is one parsed benchmark result.
type Record struct {
	Op       string  `json:"op"`
	NsOp     float64 `json:"ns_op"`
	BOp      int64   `json:"b_op,omitempty"`
	AllocsOp int64   `json:"allocs_op,omitempty"`
	Peers    int     `json:"peers,omitempty"`
}

var (
	// Benchmark result lines: name, iterations, then "value unit" pairs.
	benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)
	peersTag  = regexp.MustCompile(`peers=(\d+)`)
)

func parseLine(line string) (Record, bool) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return Record{}, false
	}
	rec := Record{Op: trimCPUSuffix(m[1])}
	if pm := peersTag.FindStringSubmatch(rec.Op); pm != nil {
		rec.Peers, _ = strconv.Atoi(pm[1])
	}
	fields := strings.Fields(m[3])
	ok := false
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			rec.NsOp = v
			ok = true
		case "B/op":
			rec.BOp = int64(v)
		case "allocs/op":
			rec.AllocsOp = int64(v)
		}
	}
	return rec, ok
}

// trimCPUSuffix drops the trailing -N GOMAXPROCS marker go test appends
// to benchmark names, so records compare across machines.
func trimCPUSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func main() {
	out := flag.String("out", "BENCH_store.json", "output JSON file")
	flag.Parse()

	var records []Record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if rec, ok := parseLine(line); ok {
			records = append(records, rec)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d records to %s\n", len(records), *out)
}
