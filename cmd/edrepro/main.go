// Command edrepro regenerates every table and figure of the paper's
// evaluation from a synthetic trace (or a trace file), printing each as
// text and optionally writing CSV files.
//
// Usage:
//
//	edrepro [flags]
//
// Typical runs:
//
//	edrepro                     # all experiments, laptop scale
//	edrepro -figures fig18,table3  # compute only selected experiments
//	edrepro -scale 2            # 2x the default population
//	edrepro -trace trace.edt    # use a previously saved trace
//	edrepro -trace trace.edt -stream  # same outputs, bounded memory
//	edrepro -window 0:7         # only the first week of the trace file
//	edrepro -out results/       # also write CSVs to results/
//	edrepro -workers 1          # serial run (same outputs, slower)
//	edrepro -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"edonkey"
	"edonkey/internal/analysis"
	"edonkey/internal/core"
	"edonkey/internal/prof"
	"edonkey/internal/workload"
)

type options struct {
	seed      uint64
	scale     float64
	days      int
	workers   int
	tracePath string
	window    string
	stream    bool
	savePath  string
	outDir    string
	only      string
	figures   string
	lists     string
	useCrawl  bool
	cpuProf   string
	memProf   string
	execTrace string
	verbose   bool
}

func main() {
	var o options
	flag.Uint64Var(&o.seed, "seed", 1, "world seed")
	flag.Float64Var(&o.scale, "scale", 1, "population scale factor")
	flag.IntVar(&o.days, "days", 0, "trace days (0 = paper's 56)")
	flag.StringVar(&o.tracePath, "trace", "", "load a saved trace (.edt or gob) instead of generating")
	flag.StringVar(&o.window, "window", "", "with -trace: analyse only days lo:hi of the file (e.g. 0:7; hi empty = end)")
	flag.BoolVar(&o.stream, "stream", false, "with -trace: stream .edt day windows instead of holding the full trace resident (same outputs, bounded memory)")
	flag.StringVar(&o.savePath, "save", "", "save the generated full trace to this file (.edt = columnar, else gob)")
	flag.StringVar(&o.outDir, "out", "", "also write CSV/text files to this directory")
	flag.StringVar(&o.only, "only", "", "comma-separated experiment ids to print (computes everything; see -figures)")
	flag.StringVar(&o.figures, "figures", "", "comma-separated experiment ids to compute (skips the rest entirely)")
	flag.StringVar(&o.lists, "lists", "", "comma-separated semantic-list sizes for the simulation figures (default 5,10,20,50,100,200)")
	flag.BoolVar(&o.useCrawl, "crawler", false, "collect via the protocol-level crawler (slow)")
	flag.IntVar(&o.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial); outputs are identical for any value")
	flag.StringVar(&o.cpuProf, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&o.memProf, "memprofile", "", "write a heap profile to this file")
	flag.StringVar(&o.execTrace, "exectrace", "", "write a runtime execution trace to this file (go tool trace)")
	flag.BoolVar(&o.verbose, "v", false, "report phase timings and memory to stderr")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "edrepro:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	stopProf, err := prof.Start(o.cpuProf, o.memProf, o.execTrace)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "edrepro:", err)
		}
	}()

	figures, err := parseFigures(o.figures)
	if err != nil {
		return err
	}
	sizes, err := parseLists(o.lists)
	if err != nil {
		return err
	}

	start := time.Now()
	var study *edonkey.Study
	if o.tracePath != "" {
		switch {
		case o.window != "":
			if o.stream {
				return fmt.Errorf("-stream and -window are mutually exclusive")
			}
			lo, hi, err := parseWindow(o.window)
			if err != nil {
				return err
			}
			study, err = edonkey.LoadStudyWindow(o.tracePath, lo, hi)
			if err != nil {
				return err
			}
		case o.stream:
			study, err = edonkey.LoadStudyStream(o.tracePath)
			if err != nil {
				return err
			}
		default:
			study, err = edonkey.LoadStudy(o.tracePath)
			if err != nil {
				return err
			}
		}
		study.SetWorkers(o.workers)
	} else {
		if o.window != "" {
			return fmt.Errorf("-window requires -trace")
		}
		if o.stream {
			return fmt.Errorf("-stream requires -trace")
		}
		cfg := edonkey.DefaultStudyConfig()
		cfg.World = scaledWorld(o.seed, o.scale, o.days)
		cfg.UseCrawler = o.useCrawl
		cfg.Workers = o.workers
		study, err = edonkey.NewStudy(cfg)
		if err != nil {
			return err
		}
	}
	if sizes != nil {
		study.Config.ListSizes = sizes
	}
	report(o.verbose, start, "load")
	if o.savePath != "" {
		if o.stream {
			return fmt.Errorf("-save cannot re-export a streamed study (its full trace is not resident)")
		}
		if err := study.Save(o.savePath); err != nil {
			return err
		}
		fmt.Printf("saved full trace to %s\n", o.savePath)
	}

	selected := map[string]bool{}
	for _, id := range strings.Split(o.only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			selected[strings.ToLower(id)] = true
		}
	}
	want := func(id string) bool {
		return len(selected) == 0 || selected[strings.ToLower(id)]
	}

	fmt.Printf("study: full %d peers / filtered %d / extrapolated %d; %d distinct files; %d workers\n\n",
		study.Full.ObservedPeers(), study.Filtered.ObservedPeers(),
		study.Extrapolated.ObservedPeers(), study.Full.DistinctFiles(),
		study.Pool().Workers())

	suiteStart := time.Now()
	simT := core.SweepTimingsSnapshot()
	suite := study.SuiteSubset(o.seed, figures)
	report(o.verbose, suiteStart, fmt.Sprintf("suite (%d experiments)", len(suite)))
	if o.verbose {
		fmt.Fprintf(os.Stderr, "edrepro: sim phases: %s\n",
			core.SweepTimingsSnapshot().Sub(simT))
	}
	for _, exp := range suite {
		if !want(exp.ID()) {
			continue
		}
		if err := emit(exp, o.outDir); err != nil {
			return err
		}
	}
	report(o.verbose, start, "total")
	return nil
}

// parseFigures validates a -figures list against the suite's known IDs.
func parseFigures(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	canonical := map[string]string{}
	for _, id := range analysis.SuiteIDs() {
		canonical[strings.ToLower(id)] = id
	}
	var out []string
	for _, id := range strings.Split(s, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		c, ok := canonical[strings.ToLower(id)]
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (known: %s)",
				id, strings.Join(analysis.SuiteIDs(), ","))
		}
		out = append(out, c)
	}
	return out, nil
}

func parseLists(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, p := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -lists entry %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseWindow parses "lo:hi" day indices; an empty hi means "to the end".
func parseWindow(s string) (lo, hi int, err error) {
	loS, hiS, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("bad -window %q: want lo:hi", s)
	}
	if lo, err = strconv.Atoi(loS); err != nil {
		return 0, 0, fmt.Errorf("bad -window %q: %v", s, err)
	}
	hi = -1
	if hiS != "" {
		if hi, err = strconv.Atoi(hiS); err != nil {
			return 0, 0, fmt.Errorf("bad -window %q: %v", s, err)
		}
	}
	return lo, hi, nil
}

func report(verbose bool, since time.Time, phase string) {
	if !verbose {
		return
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	fmt.Fprintf(os.Stderr, "edrepro: %-24s %8.1fs  heap %5.1f GB  sys %5.1f GB\n",
		phase, time.Since(since).Seconds(),
		float64(m.HeapInuse)/(1<<30), float64(m.Sys)/(1<<30))
}

func scaledWorld(seed uint64, scale float64, days int) workload.Config {
	cfg := workload.DefaultConfig()
	cfg.Seed = seed
	cfg.Peers = int(float64(cfg.Peers) * scale)
	cfg.InitialFiles = int(float64(cfg.InitialFiles) * scale)
	cfg.NewFilesPerDay = int(float64(cfg.NewFilesPerDay) * scale)
	cfg.Topics = int(float64(cfg.Topics) * scale)
	if days > 0 {
		cfg.Days = days
	}
	return cfg
}

func emit(exp analysis.Experiment, outDir string) error {
	if err := exp.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if outDir == "" {
		return nil
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(outDir, exp.ID()+".txt")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := exp.Render(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if fig, ok := exp.(*figureExperiment); ok {
		cf, err := os.Create(filepath.Join(outDir, fig.ID()+".csv"))
		if err != nil {
			return err
		}
		if err := fig.Figure.CSV(cf); err != nil {
			cf.Close()
			return err
		}
		return cf.Close()
	}
	return nil
}

// figureExperiment mirrors analysis.FigureExperiment for the CSV type
// check without exporting internals; kept in sync via the Suite API.
type figureExperiment = analysis.FigureExperiment
