// Command edrepro regenerates every table and figure of the paper's
// evaluation from a synthetic trace (or a trace file), printing each as
// text and optionally writing CSV files.
//
// Usage:
//
//	edrepro [flags]
//
// Typical runs:
//
//	edrepro                     # all experiments, laptop scale
//	edrepro -only fig18,table3  # selected experiments
//	edrepro -scale 2            # 2x the default population
//	edrepro -trace trace.edt    # use a previously saved trace
//	edrepro -out results/       # also write CSVs to results/
//	edrepro -workers 1          # serial run (same outputs, slower)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"edonkey"
	"edonkey/internal/analysis"
	"edonkey/internal/workload"
)

func main() {
	var (
		seed      = flag.Uint64("seed", 1, "world seed")
		scale     = flag.Float64("scale", 1, "population scale factor")
		days      = flag.Int("days", 0, "trace days (0 = paper's 56)")
		tracePath = flag.String("trace", "", "load a saved trace (.edt or gob) instead of generating")
		savePath  = flag.String("save", "", "save the generated full trace to this file (.edt = columnar, else gob)")
		outDir    = flag.String("out", "", "also write CSV/text files to this directory")
		only      = flag.String("only", "", "comma-separated experiment ids (e.g. fig18,table3)")
		useCrawl  = flag.Bool("crawler", false, "collect via the protocol-level crawler (slow)")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial); outputs are identical for any value")
	)
	flag.Parse()

	if err := run(*seed, *scale, *days, *workers, *tracePath, *savePath, *outDir, *only, *useCrawl); err != nil {
		fmt.Fprintln(os.Stderr, "edrepro:", err)
		os.Exit(1)
	}
}

func run(seed uint64, scale float64, days, workers int, tracePath, savePath, outDir, only string, useCrawl bool) error {
	var study *edonkey.Study
	var err error
	if tracePath != "" {
		study, err = edonkey.LoadStudy(tracePath)
		if err == nil {
			study.SetWorkers(workers)
		}
	} else {
		cfg := edonkey.DefaultStudyConfig()
		cfg.World = scaledWorld(seed, scale, days)
		cfg.UseCrawler = useCrawl
		cfg.Workers = workers
		study, err = edonkey.NewStudy(cfg)
	}
	if err != nil {
		return err
	}
	if savePath != "" {
		if err := study.Save(savePath); err != nil {
			return err
		}
		fmt.Printf("saved full trace to %s\n", savePath)
	}

	selected := map[string]bool{}
	for _, id := range strings.Split(only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			selected[strings.ToLower(id)] = true
		}
	}
	want := func(id string) bool {
		return len(selected) == 0 || selected[strings.ToLower(id)]
	}

	fmt.Printf("study: full %d peers / filtered %d / extrapolated %d; %d distinct files; %d workers\n\n",
		study.Full.ObservedPeers(), study.Filtered.ObservedPeers(),
		study.Extrapolated.ObservedPeers(), study.Full.DistinctFiles(),
		study.Pool().Workers())

	suite := study.Suite(seed)
	for _, exp := range suite {
		if !want(exp.ID()) {
			continue
		}
		if err := emit(exp, outDir); err != nil {
			return err
		}
	}
	return nil
}

func scaledWorld(seed uint64, scale float64, days int) workload.Config {
	cfg := workload.DefaultConfig()
	cfg.Seed = seed
	cfg.Peers = int(float64(cfg.Peers) * scale)
	cfg.InitialFiles = int(float64(cfg.InitialFiles) * scale)
	cfg.NewFilesPerDay = int(float64(cfg.NewFilesPerDay) * scale)
	cfg.Topics = int(float64(cfg.Topics) * scale)
	if days > 0 {
		cfg.Days = days
	}
	return cfg
}

func emit(exp analysis.Experiment, outDir string) error {
	if err := exp.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if outDir == "" {
		return nil
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(outDir, exp.ID()+".txt")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := exp.Render(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if fig, ok := exp.(*figureExperiment); ok {
		cf, err := os.Create(filepath.Join(outDir, fig.ID()+".csv"))
		if err != nil {
			return err
		}
		if err := fig.Figure.CSV(cf); err != nil {
			cf.Close()
			return err
		}
		return cf.Close()
	}
	return nil
}

// figureExperiment mirrors analysis.FigureExperiment for the CSV type
// check without exporting internals; kept in sync via the Suite API.
type figureExperiment = analysis.FigureExperiment
