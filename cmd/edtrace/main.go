// Command edtrace converts, merges and inspects trace files in either
// format (columnar .edt or legacy gob).
//
// Usage:
//
//	edtrace info  <file>            # summary + per-day stats (no postings decode for .edt)
//	edtrace verify <file>           # footer-driven structural check, no postings decode
//	edtrace convert <in> <out>      # output format from extension: .edt, .json, else gob
//	edtrace merge <out> <in> ...    # concatenate capture segments into one trace
//
// convert is the gob→edt migration path; merge unifies identities across
// independently collected capture segments (files by hash, peers by user
// hash + IP) and renumbers them by first sight, so merging segments that
// partition one crawl's days reproduces the one-shot trace exactly.
// verify checks section framing, lengths and per-day header invariants
// straight off the footer — instant even on multi-gigabyte captures —
// and falls back to a forward scan on truncated files, reporting how
// much of the capture is still intact.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"edonkey/internal/trace"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage:\n  edtrace info <file>\n  edtrace verify <file>\n  edtrace convert <in> <out>\n  edtrace merge <out> <in> ...\n")
	}
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		flag.Usage()
		os.Exit(2)
	}
	var err error
	switch args[0] {
	case "info":
		if len(args) != 2 {
			flag.Usage()
			os.Exit(2)
		}
		err = info(args[1])
	case "verify":
		if len(args) != 2 {
			flag.Usage()
			os.Exit(2)
		}
		err = verify(args[1])
	case "convert":
		if len(args) != 3 {
			flag.Usage()
			os.Exit(2)
		}
		err = convert(args[1], args[2])
	case "merge":
		if len(args) < 3 {
			flag.Usage()
			os.Exit(2)
		}
		err = merge(args[1], args[2:])
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "edtrace:", err)
		os.Exit(1)
	}
}

// info prints a capture summary. For .edt files everything comes from
// the footer index and the identity tables — day postings are never
// decoded, which is what makes info instant on multi-gigabyte captures.
func info(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if trace.IsEDT(f) {
		er, err := trace.NewEDTReader(f, fi.Size())
		if err != nil {
			return err
		}
		fmt.Printf("%s: columnar .edt, %d bytes\n", path, fi.Size())
		fmt.Printf("  peers %d, files %d, days %d\n", er.NumPeers(), er.NumFiles(), er.NumDays())
		if fh, fm, pi, pm, err := er.IdentBytes(); err == nil {
			fmt.Printf("  identity tables: %d bytes on disk (file hashes %d, file meta %d, peer idents %d, peer meta %d) — decoded lazily, column by column\n",
				fh+fm+pi+pm, fh, fm, pi, pm)
		}
		total, shared := 0, 0
		for i := 0; i < er.NumDays(); i++ {
			d := er.DayInfo(i)
			kf := " "
			if d.Keyframe() {
				kf = "K"
			}
			// The tag scan costs a few varints per row; failures (it
			// re-checks row counts) degrade to the footer-only line.
			if dd, err := er.DayDelta(i); err == nil && dd.Changed+dd.Unchanged > 0 {
				fmt.Printf("  day %3d %s: %7d peers observed, %9d postings, %7d shared rows, churn %5.1f%%\n",
					d.Day, kf, d.Rows, d.Postings, dd.Unchanged, 100*dd.Churn())
				shared += dd.Unchanged
			} else {
				fmt.Printf("  day %3d %s: %7d peers observed, %9d postings\n", d.Day, kf, d.Rows, d.Postings)
			}
			total += d.Postings
		}
		fmt.Printf("  total postings %d (%.2f bytes/posting on disk), %d shared rows across days\n",
			total, float64(fi.Size())/float64(max(total, 1)), shared)
		return nil
	}

	tr, err := trace.ReadFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: legacy gob, %d bytes\n", path, fi.Size())
	fmt.Printf("  peers %d, files %d, days %d\n", tr.NumPeers(), tr.NumFiles(), len(tr.Days))
	for _, s := range tr.Days {
		fmt.Printf("  day %3d  : %7d peers observed, %9d postings\n", s.Day, s.ObservedRows(), s.NNZ())
	}
	return nil
}

// verify structurally checks an .edt capture off its footer — section
// framing, lengths, per-day invariants — without decoding any postings,
// and reports the intact prefix of a truncated file.
func verify(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if !trace.IsEDT(f) {
		return fmt.Errorf("%s: not an .edt capture (verify checks the columnar format only)", path)
	}
	rep, verr := trace.VerifyEDT(f, fi.Size())
	if verr != nil {
		if rep.Truncated {
			fmt.Printf("%s: TRUNCATED after %d of %d bytes; %d intact day section(s)\n",
				path, rep.ScannedBytes, rep.Size, rep.Days)
		}
		return verr
	}
	fmt.Printf("%s: OK, %d bytes\n", path, rep.Size)
	fmt.Printf("  peers %d, files %d, days %d, postings %d\n", rep.Peers, rep.Files, rep.Days, rep.Postings)
	fmt.Printf("  all section frames, lengths and per-day headers check out (postings not decoded)\n")
	return nil
}

// convert rewrites a trace in the format the output extension selects.
func convert(in, out string) error {
	tr, err := trace.ReadFile(in)
	if err != nil {
		return err
	}
	if strings.HasSuffix(out, ".json") {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := tr.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	} else if err := tr.WriteFile(out); err != nil {
		return err
	}
	fmt.Printf("converted %s -> %s (%d peers, %d files, %d days)\n",
		in, out, tr.NumPeers(), tr.NumFiles(), len(tr.Days))
	return nil
}

// merge concatenates capture segments into out.
func merge(out string, ins []string) error {
	segments := make([]*trace.Trace, 0, len(ins))
	for _, in := range ins {
		tr, err := trace.ReadFile(in)
		if err != nil {
			return fmt.Errorf("%s: %w", in, err)
		}
		segments = append(segments, tr)
	}
	merged, err := trace.Merge(segments...)
	if err != nil {
		return err
	}
	if err := merged.WriteFile(out); err != nil {
		return err
	}
	fmt.Printf("merged %d segments -> %s (%d peers, %d files, %d days, %d observations)\n",
		len(ins), out, merged.NumPeers(), merged.NumFiles(), len(merged.Days), merged.Observations())
	return nil
}
