// Command edsim runs the paper's semantic-neighbour search simulation
// with configurable strategy, list size, hops and ablations, on either a
// generated or saved trace.
//
// Usage:
//
//	edsim [-strategy lru|history|random] [-list 20] [-twohop]
//	      [-drop-uploaders 0.05] [-drop-files 0.15] [-randomize]
//	      [-lists 5,10,20,50] [-workers 0] [-trace trace.edt]
//	      [-v] [-exectrace run.trace]
//
// With -lists, one simulation per list size runs concurrently on the
// worker pool and a summary line is printed per size. A single point
// scales with -workers too: its event loop is sharded across the pool
// (speculate in parallel, commit in order), bit-identical to -workers 1.
package main

import (
	"cmp"
	"flag"
	"fmt"
	"os"
	"slices"
	"strconv"
	"strings"

	"edonkey"
	"edonkey/internal/core"
	"edonkey/internal/prof"
	"edonkey/internal/workload"
)

func main() {
	var (
		tracePath      = flag.String("trace", "", "saved trace file, .edt or gob (default: generate)")
		seed           = flag.Uint64("seed", 1, "seed")
		peers          = flag.Int("peers", 2000, "generated population size")
		days           = flag.Int("days", 30, "generated trace days")
		strategy       = flag.String("strategy", "lru", "lru, history or random")
		listSize       = flag.Int("list", 20, "semantic neighbour list size")
		listSweep      = flag.String("lists", "", "comma-separated list sizes: run the whole sweep concurrently")
		twoHop         = flag.Bool("twohop", false, "query neighbours' neighbours on a miss")
		dropUp         = flag.Float64("drop-uploaders", 0, "fraction of top uploaders removed")
		dropFiles      = flag.Float64("drop-files", 0, "fraction of top popular files removed")
		randomizeTrace = flag.Bool("randomize", false, "fully randomize caches first (appendix algorithm)")
		load           = flag.Bool("load", false, "print the query-load distribution")
		workers        = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial); shards sweeps and single points alike, results identical for any value")
		cpuprofile     = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile     = flag.String("memprofile", "", "write a heap profile to this file on exit")
		exectrace      = flag.String("exectrace", "", "write a runtime execution trace to this file (go tool trace)")
		verbose        = flag.Bool("v", false, "report simulation phase timings (prestate / eval / commit) to stderr")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile, *exectrace)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edsim:", err)
		os.Exit(1)
	}
	// os.Exit skips defers, so close the profiles explicitly before any
	// exit path — a truncated CPU profile is unreadable by pprof.
	timings := core.SweepTimingsSnapshot()
	runErr := run(*tracePath, *seed, *peers, *days, *workers, *listSize,
		*strategy, *listSweep, *twoHop, *dropUp, *dropFiles,
		*randomizeTrace, *load)
	if *verbose {
		fmt.Fprintf(os.Stderr, "edsim: sim phases: %s\n",
			core.SweepTimingsSnapshot().Sub(timings))
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "edsim:", err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "edsim:", runErr)
		os.Exit(1)
	}
}

func run(tracePath string, seed uint64, peers, days, workers, listSize int,
	strategy, listSweep string, twoHop bool, dropUp, dropFiles float64,
	randomizeTrace, load bool) error {
	study, err := makeStudy(tracePath, seed, peers, days, workers)
	if err != nil {
		return err
	}

	opt := edonkey.SearchOptions{
		ListSize:         listSize,
		Strategy:         strategy,
		TwoHop:           twoHop,
		Seed:             seed,
		DropTopUploaders: dropUp,
		DropTopFiles:     dropFiles,
		TrackLoad:        load,
	}
	if randomizeTrace {
		opt.RandomizeSwaps = -1
	}

	if listSweep != "" {
		return runSweep(study, opt, listSweep)
	}

	res, err := study.SearchSim(opt)
	if err != nil {
		return err
	}

	fmt.Println(res.String())
	fmt.Printf("  peers: %d (%d sharers), contributions: %d\n",
		res.Peers, res.Sharers, res.Contributions)
	fmt.Printf("  one-hop hits: %d, two-hop hits: %d, messages: %d\n",
		res.OneHopHits, res.TwoHopHits, res.Messages)
	if load && res.Requests > 0 {
		printLoad(res)
	}
	return nil
}

// printLoad prints the query-load distribution of a TrackLoad run.
func printLoad(res core.SimResult) {
	var loads []int64
	for _, l := range res.LoadPerPeer {
		if l > 0 {
			loads = append(loads, l)
		}
	}
	if len(loads) == 0 {
		fmt.Println("  load: no queries were delivered")
		return
	}
	slices.SortFunc(loads, func(a, b int64) int { return cmp.Compare(b, a) })
	mean := float64(res.Messages) / float64(len(loads))
	fmt.Printf("  load: %d loaded peers, mean %.1f msgs, max %d\n",
		len(loads), mean, loads[0])
	for _, q := range []int{0, len(loads) / 100, len(loads) / 10, len(loads) / 2} {
		fmt.Printf("    rank %6d: %d msgs\n", q+1, loads[q])
	}
}

// runSweep parses the -lists grid and runs one simulation per size
// concurrently through the facade's sweep entry point.
func runSweep(study *edonkey.Study, base edonkey.SearchOptions, lists string) error {
	var opts []edonkey.SearchOptions
	for _, field := range strings.Split(lists, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		L, err := strconv.Atoi(field)
		if err != nil || L <= 0 {
			return fmt.Errorf("bad -lists entry %q", field)
		}
		opt := base
		opt.ListSize = L
		opts = append(opts, opt)
	}
	if len(opts) == 0 {
		return fmt.Errorf("-lists is empty")
	}
	results, err := study.SearchSweep(opts)
	if err != nil {
		return err
	}
	for _, res := range results {
		fmt.Println(res.String())
		if base.TrackLoad && res.Requests > 0 {
			printLoad(res)
		}
	}
	return nil
}

func makeStudy(tracePath string, seed uint64, peers, days, workers int) (*edonkey.Study, error) {
	if tracePath != "" {
		study, err := edonkey.LoadStudy(tracePath)
		if err != nil {
			return nil, err
		}
		return study.SetWorkers(workers), nil
	}
	cfg := edonkey.DefaultStudyConfig()
	w := workload.DefaultConfig()
	w.Seed = seed
	w.Peers = peers
	w.Days = days
	w.Topics = max(8, peers/20)
	w.InitialFiles = 30 * peers
	w.NewFilesPerDay = max(1, w.InitialFiles/100)
	cfg.World = w
	cfg.Workers = workers
	return edonkey.NewStudy(cfg)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
