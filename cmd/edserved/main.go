// Command edserved serves the first-tier eDonkey protocol over real TCP
// at production load. It freezes one day of a population — either a
// synthetic world built in-process or a captured .edt/.gob trace — into
// an immutable, lock-free serving snapshot (internal/serve) and answers
// login, nickname-sweep, keyword-search and source queries on it until
// terminated, draining gracefully on SIGTERM/SIGINT so in-flight
// replies complete.
//
// Usage:
//
//	edserved -addr :4661 [-peers 20000] [-seed 1] [-day 0] [-maxconns 4096] [-stats 10s]
//	edserved -addr :4661 -trace capture.edt [-day 0]
//
// The -stats heartbeat prints active/accepted connections, the interval
// qps and cumulative per-class counts. -legacy serves through the
// unsharded first-cut path (global directory mutex, per-reply
// allocations and flushes) for A/B comparison against the hot path.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"edonkey/internal/serve"
	"edonkey/internal/trace"
	"edonkey/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", ":4661", "TCP listen address")
		tracePath = flag.String("trace", "", "serve a captured trace file instead of a synthetic world")
		peers     = flag.Int("peers", 20000, "synthetic world size (ignored with -trace)")
		seed      = flag.Uint64("seed", 1, "synthetic world seed")
		day       = flag.Int("day", 0, "day to freeze and serve")
		maxConns  = flag.Int("maxconns", serve.DefaultMaxConns, "concurrent connection cap")
		statsIvl  = flag.Duration("stats", 10*time.Second, "heartbeat interval (0 = silent)")
		grace     = flag.Duration("grace", 10*time.Second, "drain deadline after SIGTERM")
		legacy    = flag.Bool("legacy", false, "serve through the unsharded first-cut path (A/B baseline)")
	)
	flag.Parse()
	if err := run(*addr, *tracePath, *peers, *seed, *day, *maxConns, *statsIvl, *grace, *legacy); err != nil {
		fmt.Fprintln(os.Stderr, "edserved:", err)
		os.Exit(1)
	}
}

func run(addr, tracePath string, peers int, seed uint64, day, maxConns int, statsIvl, grace time.Duration, legacy bool) error {
	snap, err := buildSnapshot(tracePath, peers, seed, day)
	if err != nil {
		return err
	}
	fmt.Printf("edserved: serving day %d: %d users, %d published files\n",
		day, snap.NumUsers(), snap.NumFiles())

	srv := serve.New(snap, serve.Config{MaxConns: maxConns, Legacy: legacy})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("edserved: listening on %s (maxconns=%d legacy=%v)\n", ln.Addr(), maxConns, legacy)

	if statsIvl > 0 {
		go heartbeat(srv, statsIvl)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("edserved: %v, draining (grace %v)\n", sig, grace)
		ctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Printf("edserved: forced drain: %v\n", err)
		}
		<-errc // the Serve goroutine exits with ErrServerClosed
		st := srv.Stats()
		fmt.Printf("edserved: served %d queries over %d connections\n", st.Queries, st.Accepted)
		return nil
	}
}

// buildSnapshot loads a trace day or builds and steps a synthetic world
// to the requested day.
func buildSnapshot(tracePath string, peers int, seed uint64, day int) (*serve.Snapshot, error) {
	if tracePath != "" {
		tr, err := trace.ReadFile(tracePath)
		if err != nil {
			return nil, err
		}
		if day < 0 || day >= len(tr.Days) {
			return nil, fmt.Errorf("trace has %d days, -day %d out of range", len(tr.Days), day)
		}
		return serve.SnapshotFromTrace(tr, day), nil
	}
	wcfg := workload.DefaultConfig()
	wcfg.Seed = seed
	wcfg.Peers = peers
	wcfg.Days = day + 1
	wcfg.Topics = max(8, peers/20)
	wcfg.InitialFiles = 30 * peers
	wcfg.NewFilesPerDay = max(1, wcfg.InitialFiles/100)
	w, err := workload.New(wcfg)
	if err != nil {
		return nil, err
	}
	for w.Day() < day {
		w.Step()
	}
	return serve.SnapshotFromWorld(w, day), nil
}

// heartbeat prints the periodic stats line: connection gauges, the
// interval's query rate and cumulative per-class counters.
func heartbeat(srv *serve.Server, every time.Duration) {
	prev := srv.Stats()
	for range time.Tick(every) {
		st := srv.Stats()
		qps := float64(st.Queries-prev.Queries) / every.Seconds()
		fmt.Printf("edserved: conns=%d accepted=%d qps=%.0f total=%d login=%d users=%d search=%d sources=%d offers=%d rejects=%d\n",
			st.Active, st.Accepted, qps, st.Queries,
			st.Logins, st.UserSearches, st.FileSearches, st.Sources, st.Offers, st.Rejects)
		prev = st
	}
}
