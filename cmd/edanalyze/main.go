// Command edanalyze inspects a saved trace: it prints the Table 1
// summary, the country and AS mixes, contribution statistics and the
// clustering correlation, without running any simulation.
//
// Usage:
//
//	edanalyze trace.gob
package main

import (
	"flag"
	"fmt"
	"os"

	"edonkey"
	"edonkey/internal/analysis"
	"edonkey/internal/geo"
	"edonkey/internal/stats"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: edanalyze <trace-file>")
		os.Exit(2)
	}
	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "edanalyze:", err)
		os.Exit(1)
	}
}

func run(path string) error {
	study, err := edonkey.LoadStudy(path)
	if err != nil {
		return err
	}
	tab := analysis.Table1(study.Full, study.Filtered, study.Extrapolated)
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	reg := geo.NewRegistry()
	tab2 := analysis.Table2(study.Filtered, reg, 5)
	if err := tab2.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()

	// Contribution skew (the "top 15% share 75%" statistic).
	var sizes []float64
	for _, c := range study.Caches {
		if len(c) > 0 {
			sizes = append(sizes, float64(len(c)))
		}
	}
	if len(sizes) > 0 {
		top15, err := stats.TopShare(sizes, 0.15)
		if err != nil {
			return err
		}
		gini, err := stats.Gini(sizes)
		if err != nil {
			return err
		}
		fmt.Printf("contribution skew: top 15%% of sharers hold %.0f%% of files (gini %.2f)\n\n",
			100*top15, gini)
	}

	fmt.Println("clustering correlation (filtered trace, all files):")
	pts := study.ClusteringCorrelation()
	shown := 0
	for _, p := range pts {
		if p.CommonFiles > 10 && p.CommonFiles%10 != 0 {
			continue
		}
		fmt.Printf("  P(another | >= %3d common) = %5.1f%%  (%d pairs)\n",
			p.CommonFiles, 100*p.Probability, p.Pairs)
		shown++
		if shown >= 15 {
			break
		}
	}
	return nil
}
