// Command edanalyze inspects a saved trace: it prints the Table 1
// summary, the country and AS mixes, contribution statistics and the
// clustering correlation, without running any simulation. The report
// sections are computed concurrently on the worker pool and printed in
// order.
//
// Usage:
//
//	edanalyze [-workers 0] trace.edt
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"edonkey"
	"edonkey/internal/analysis"
	"edonkey/internal/geo"
	"edonkey/internal/prof"
	"edonkey/internal/runner"
	"edonkey/internal/stats"
)

func main() {
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial); output is identical for any value")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	exectrace := flag.String("exectrace", "", "write a runtime execution trace to this file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: edanalyze [-workers N] [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-exectrace run.trace] <trace-file>")
		os.Exit(2)
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile, *exectrace)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edanalyze:", err)
		os.Exit(1)
	}
	runErr := run(flag.Arg(0), *workers)
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "edanalyze:", err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "edanalyze:", runErr)
		os.Exit(1)
	}
}

func run(path string, workers int) error {
	study, err := edonkey.LoadStudy(path)
	if err != nil {
		return err
	}
	study.SetWorkers(workers)

	// Each section renders into its own buffer; the pool computes them
	// concurrently and the buffers are printed in report order.
	sections := []func() (string, error){
		func() (string, error) {
			var buf bytes.Buffer
			tab := analysis.Table1(study.Full, study.Filtered, study.Extrapolated)
			if err := tab.Render(&buf); err != nil {
				return "", err
			}
			return buf.String(), nil
		},
		func() (string, error) {
			var buf bytes.Buffer
			tab := analysis.Table2(study.Filtered, geo.NewRegistry(), 5)
			if err := tab.Render(&buf); err != nil {
				return "", err
			}
			return buf.String(), nil
		},
		func() (string, error) {
			// Contribution skew (the "top 15% share 75%" statistic).
			var sizes []float64
			for _, c := range study.Caches {
				if len(c) > 0 {
					sizes = append(sizes, float64(len(c)))
				}
			}
			if len(sizes) == 0 {
				return "", nil
			}
			top15, err := stats.TopShare(sizes, 0.15)
			if err != nil {
				return "", err
			}
			gini, err := stats.Gini(sizes)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("contribution skew: top 15%% of sharers hold %.0f%% of files (gini %.2f)\n",
				100*top15, gini), nil
		},
		func() (string, error) {
			var buf bytes.Buffer
			fmt.Fprintln(&buf, "clustering correlation (filtered trace, all files):")
			pts := study.ClusteringCorrelation()
			shown := 0
			for _, p := range pts {
				if p.CommonFiles > 10 && p.CommonFiles%10 != 0 {
					continue
				}
				fmt.Fprintf(&buf, "  P(another | >= %3d common) = %5.1f%%  (%d pairs)\n",
					p.CommonFiles, 100*p.Probability, p.Pairs)
				shown++
				if shown >= 15 {
					break
				}
			}
			return buf.String(), nil
		},
	}

	type section struct {
		text string
		err  error
	}
	rendered := runner.Collect(study.Pool(), len(sections), func(i int) section {
		text, err := sections[i]()
		return section{text, err}
	})
	for _, s := range rendered {
		if s.err != nil {
			return s.err
		}
		if s.text == "" {
			continue
		}
		fmt.Print(s.text)
		fmt.Println()
	}
	return nil
}
