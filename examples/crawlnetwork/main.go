// Crawlnetwork demonstrates the measurement substrate at the protocol
// level: it builds a small eDonkey network, speaks the wire protocol
// directly (login, keyword search, source queries, browsing), then runs
// the paper's crawler methodology over the same network and reports what
// the methodology can and cannot see.
package main

import (
	"fmt"
	"log"

	"edonkey/internal/crawler"
	"edonkey/internal/edonkey"
	"edonkey/internal/protocol"
	"edonkey/internal/workload"
)

func main() {
	protocolDemo()
	crawlDemo()
}

// protocolDemo drives one server and two clients by hand.
func protocolDemo() {
	fmt.Println("== wire protocol demo ==")
	net := edonkey.NewNetwork()
	serverEP := protocol.Endpoint{IP: 0x7F000001, Port: 4661}
	server := edonkey.NewServer(net, serverEP)
	if err := server.Start(); err != nil {
		log.Fatal(err)
	}
	defer server.Stop()

	// The file identifier is a real eDonkey MD4 block hash.
	content := []byte("the contents of a shared file")
	fileID := edonkey.HashBytes(content)
	entry := protocol.FileEntry{
		Hash: fileID,
		Size: uint64(len(content)),
		Name: "blue_horizon_demo.mp3",
		Type: "audio",
	}

	alice := edonkey.NewClient(net, [16]byte{1}, protocol.Endpoint{IP: 0x0A000001, Port: 4662}, "alice")
	bob := edonkey.NewClient(net, [16]byte{2}, protocol.Endpoint{IP: 0x0A000002, Port: 4662}, "bob")
	alice.SetShared([]protocol.FileEntry{entry})
	bob.SetShared([]protocol.FileEntry{entry})
	for _, c := range []*edonkey.Client{alice, bob} {
		if err := c.GoOnline(); err != nil {
			log.Fatal(err)
		}
		defer c.GoOffline()
		sess, err := c.Connect(serverEP)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.Publish(sess); err != nil {
			log.Fatal(err)
		}
		if _, err := sess.ServerList(); err != nil { // sync the publish
			log.Fatal(err)
		}
		sess.Close()
	}

	sess, err := alice.Connect(serverEP)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	results, err := sess.Search("horizon")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("keyword search 'horizon': %d result(s), availability %d\n",
		len(results), results[0].Availability)
	sources, err := sess.GetSources(fileID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sources of %x...: %d peers\n", fileID[:4], len(sources))
	files, err := alice.Browse(bob.Endpoint)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice browses bob: %d file(s), first %q\n\n", len(files), files[0].Name)
}

// crawlDemo runs the full crawler methodology over a generated world.
func crawlDemo() {
	fmt.Println("== crawler methodology demo ==")
	cfg := workload.DefaultConfig()
	cfg.Seed = 3
	cfg.Peers = 250
	cfg.Days = 6
	cfg.Topics = 30
	cfg.InitialFiles = 6000
	cfg.NewFilesPerDay = 60

	tr, stats, err := crawler.Crawl(cfg, crawler.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweep: %d nickname queries over %d days discovered %d identities\n",
		stats.Queries, stats.Days, stats.UniqueUsers)
	fmt.Printf("methodology losses: %d low-ID (firewalled) skipped, %d browse-rejected\n",
		stats.LowIDSkipped, stats.BrowseRejected)
	fmt.Printf("result: %d snapshots of %d peers, %d distinct files (%s)\n",
		tr.Observations(), tr.ObservedPeers(), tr.DistinctFiles(),
		humanBytes(tr.DistinctBytes()))

	filtered := tr.Filter()
	fmt.Printf("after duplicate filtering: %d peers (full had %d identities)\n",
		filtered.ObservedPeers(), tr.ObservedPeers())
}

func humanBytes(v int64) string {
	switch {
	case v >= 1<<40:
		return fmt.Sprintf("%.1f TB", float64(v)/(1<<40))
	case v >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(v)/(1<<30))
	default:
		return fmt.Sprintf("%.1f MB", float64(v)/(1<<20))
	}
}
