// Rarefiles reproduces the paper's most actionable finding (§5.3.2):
// semantic clustering is strongest for rare files, which are exactly the
// files that server-less search struggles with. It compares the
// clustering correlation of rare versus popular audio files and shows how
// the semantic hit rate changes as popular files are removed from the
// workload.
package main

import (
	"fmt"
	"log"

	"edonkey"
	"edonkey/internal/core"
	"edonkey/internal/trace"
	"edonkey/internal/workload"
)

func main() {
	cfg := edonkey.DefaultStudyConfig()
	cfg.World = workload.Config{
		Seed:           7,
		Peers:          900,
		Days:           21,
		Topics:         80,
		InitialFiles:   30000,
		NewFilesPerDay: 250,
	}
	study, err := edonkey.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== clustering of rare vs popular audio files (Fig. 13) ==")
	// Popularity bands scale with the population: the paper's [30..40]
	// band corresponds to roughly [8+] at this laptop scale.
	audio := trace.KindAudio
	rare := core.ClusteringCorrelation(study.Caches,
		core.KindPopularityFilter(study.Filtered, &audio, 1, 7))
	popular := core.ClusteringCorrelation(study.Caches,
		core.KindPopularityFilter(study.Filtered, &audio, 8, 1<<30))
	fmt.Println("P(another common file | n in common):")
	fmt.Printf("%4s  %18s  %18s\n", "n", "rare audio [1..7]", "popular audio [8+]")
	for n := 1; n <= 6; n++ {
		fmt.Printf("%4d  %17.1f%%  %17.1f%%\n", n,
			100*probAt(rare, n), 100*probAt(popular, n))
	}

	fmt.Println("\n== hit rate as popular files disappear (Fig. 20, LRU, 5 neighbours) ==")
	for _, drop := range []float64{0, 0.05, 0.15, 0.30} {
		res, err := study.SearchSim(edonkey.SearchOptions{
			ListSize: 5, Strategy: "lru", Seed: 1, DropTopFiles: drop,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("without %4.0f%% most popular files: hit %5.1f%%  (%d requests left)\n",
			100*drop, 100*res.HitRate(), res.Requests)
	}

	fmt.Println("\nTakeaway: pairs sharing even one rare file are far more likely to")
	fmt.Println("share more of them, so semantic neighbour lists are most valuable")
	fmt.Println("exactly where servers and flooding are weakest.")
}

func probAt(pts []core.CorrelationPoint, n int) float64 {
	for _, p := range pts {
		if p.CommonFiles == n {
			return p.Probability
		}
	}
	return 0
}
