// Quickstart: generate a small synthetic eDonkey study, print its
// headline statistics, and run the paper's semantic-neighbour search
// simulation with the three list-management strategies.
package main

import (
	"fmt"
	"log"

	"edonkey"
	"edonkey/internal/workload"
)

func main() {
	// A small world keeps this example under a few seconds.
	cfg := edonkey.DefaultStudyConfig()
	cfg.World = workload.Config{
		Seed:           42,
		Peers:          800,
		Days:           21,
		Topics:         70,
		InitialFiles:   25000,
		NewFilesPerDay: 220,
	}
	study, err := edonkey.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== trace levels (paper Table 1) ==")
	fmt.Printf("full:         %6d clients, %7d observations, %7d distinct files\n",
		study.Full.ObservedPeers(), study.Full.Observations(), study.Full.DistinctFiles())
	fmt.Printf("filtered:     %6d clients (%d free-riders)\n",
		study.Filtered.ObservedPeers(), study.Filtered.FreeRiders())
	fmt.Printf("extrapolated: %6d clients over %d days\n",
		study.Extrapolated.ObservedPeers(), study.Extrapolated.DurationDays())

	fmt.Println("\n== clustering correlation (paper Fig. 13) ==")
	for _, p := range study.ClusteringCorrelation() {
		if p.CommonFiles > 8 {
			break
		}
		fmt.Printf("P(another common file | %d in common) = %5.1f%%   (%d pairs)\n",
			p.CommonFiles, 100*p.Probability, p.Pairs)
	}

	fmt.Println("\n== semantic search, 20 neighbours (paper Fig. 18) ==")
	for _, strategy := range []string{"lru", "history", "random"} {
		res, err := study.SearchSim(edonkey.SearchOptions{
			ListSize: 20,
			Strategy: strategy,
			Seed:     1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s hit rate: %5.1f%%  (%d hits / %d requests)\n",
			strategy, 100*res.HitRate(), res.Hits, res.Requests)
	}

	res, err := study.SearchSim(edonkey.SearchOptions{
		ListSize: 20, Strategy: "lru", TwoHop: true, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLRU + two-hop (paper Fig. 23): %.1f%% (one-hop %d + two-hop %d hits)\n",
		100*res.HitRate(), res.OneHopHits, res.TwoHopHits)
}
