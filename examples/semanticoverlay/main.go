// Semanticoverlay demonstrates the paper's "server-less file sharing"
// end-state (§7 future work, reference [31]): instead of learning
// semantic neighbours reactively from uploads (LRU), peers build them
// proactively with a two-layer gossip overlay — no servers involved at
// any stage. The example shows the overlay converging and then compares
// its neighbour lists against the paper's strategies under the identical
// trace-driven search workload.
package main

import (
	"fmt"
	"log"

	"edonkey"
	"edonkey/internal/core"
	"edonkey/internal/overlay"
	"edonkey/internal/workload"
)

func main() {
	cfg := edonkey.DefaultStudyConfig()
	cfg.World = workload.Config{
		Seed:           11,
		Peers:          800,
		Days:           21,
		Topics:         70,
		InitialFiles:   25000,
		NewFilesPerDay: 220,
	}
	study, err := edonkey.NewStudy(cfg)
	if err != nil {
		log.Fatal(err)
	}

	ocfg := overlay.DefaultConfig()
	ocfg.SemanticViewSize = 20
	proto, err := overlay.New(study.Caches, ocfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== gossip convergence ==")
	fmt.Println("round  mean overlap with best neighbour")
	for round := 0; round <= 12; round++ {
		if round > 0 {
			proto.Round()
		}
		if round%2 == 0 {
			fmt.Printf("%5d  %.1f files\n", round, proto.MeanTopOverlap())
		}
	}
	fmt.Printf("gossip cost: %d messages over %d rounds (%d peers)\n\n",
		proto.Messages(), proto.Rounds(), len(proto.Peers()))

	fmt.Println("== search performance, 20 neighbours ==")
	run := func(label string, opt core.SimOptions) {
		opt.ListSize = 20
		opt.Seed = 1
		res := core.RunSim(study.Caches, opt)
		fmt.Printf("%-22s hit rate %5.1f%%\n", label, 100*res.HitRate())
	}
	run("gossip overlay (fixed)", core.SimOptions{FixedLists: proto.Views()})
	run("LRU (reactive)", core.SimOptions{Kind: core.LRU})
	run("History (reactive)", core.SimOptions{Kind: core.History})
	run("Random lists", core.SimOptions{Kind: core.Random})

	fmt.Println("\nThe proactive overlay reaches LRU-class hit rates before a single")
	fmt.Println("download has happened — the missing piece the paper's conclusion")
	fmt.Println("calls for when the servers go away.")
}
